// Figure 4: matrix multiplication with 4096-entry blocks — congestion and
// communication-time ratios vs network size (4×4 … 32×32). Paper:
// congestion ratio of the fixed home strategy grows ≈ √P (5.6 → 48),
// the access tree's ≈ log P (3.9 → 8.1); the access tree's advantage in
// time grows with the network (99% → 28% of the fixed home time).

#include <cstdio>

#include "bench_common.hpp"

using namespace diva;
using namespace diva::bench;
namespace mm = diva::apps::matmul;

int main() {
  std::vector<int> sides;
  switch (scale()) {
    case Scale::Quick: sides = {4, 8}; break;
    case Scale::Default: sides = {4, 8, 16}; break;
    case Scale::Full: sides = {4, 8, 16, 32}; break;
  }
  const auto cm = net::CostModel::gcel().withoutCompute();

  std::printf("Figure 4 — matrix multiplication, block size 4096\n");
  std::printf("ratios relative to the hand-optimized strategy; AT/FH = access tree's\n");
  std::printf("share of the fixed home time (paper: 99%% / 61%% / 44%% / 28%%)\n\n");
  support::Table table({"mesh", "strategy", "congestion ratio", "comm time ratio",
                        "AT/FH time"});

  for (const int side : sides) {
    mm::Config cfg;
    cfg.blockInts = 4096;

    Machine mh(side, side, cm);
    const auto ho = mm::runHandOptimized(mh, cfg);

    Machine ma(side, side, cm);
    Runtime rta(ma, accessTree(4).config);
    const auto at = mm::runDiva(ma, rta, cfg);

    Machine mf(side, side, cm);
    Runtime rtf(mf, fixedHome().config);
    const auto fh = mm::runDiva(mf, rtf, cfg);

    const std::string mesh = std::to_string(side) + "x" + std::to_string(side);
    table.addRow({mesh, "4-ary access tree",
                  ratioCell(static_cast<double>(at.congestionBytes),
                            static_cast<double>(ho.congestionBytes)),
                  ratioCell(at.timeUs, ho.timeUs),
                  support::fmtPercent(at.timeUs / fh.timeUs)});
    table.addRow({mesh, "fixed home",
                  ratioCell(static_cast<double>(fh.congestionBytes),
                            static_cast<double>(ho.congestionBytes)),
                  ratioCell(fh.timeUs, ho.timeUs), ""});
  }
  table.print();
  return 0;
}
