// Figure 4: matrix multiplication with 4096-entry blocks — congestion and
// communication-time ratios vs network size (4×4 … 32×32). Paper:
// congestion ratio of the fixed home strategy grows ≈ √P (5.6 → 48),
// the access tree's ≈ log P (3.9 → 8.1); the access tree's advantage in
// time grows with the network (99% → 28% of the fixed home time).
//
// Parameterized over TopologySpec: DIVA_TOPOLOGY=torus2d reruns the sweep
// on the wrapped grid (matmul's block layout needs grid coordinates, so
// only the grid shapes apply here).

#include <cstdio>

#include "bench_common.hpp"

using namespace diva;
using namespace diva::bench;
namespace mm = diva::apps::matmul;

int main() {
  std::vector<int> sides;
  switch (scale()) {
    case Scale::Quick: sides = {4, 8}; break;
    case Scale::Default: sides = {4, 8, 16}; break;
    case Scale::Full: sides = {4, 8, 16, 32}; break;
  }
  const auto cm = net::CostModel::gcel().withoutCompute();

  std::printf("Figure 4 — matrix multiplication, block size 4096\n");
  std::printf("ratios relative to the hand-optimized strategy; AT/FH = access tree's\n");
  std::printf("share of the fixed home time (paper: 99%% / 61%% / 44%% / 28%%)\n\n");
  support::Table table({"machine", "strategy", "congestion ratio", "comm time ratio",
                        "AT/FH time"});

  double lastAtOverFh = 0.0;
  net::TopologySpec lastSpec;
  for (const int side : sides) {
    const net::TopologySpec spec = topoForSide(side, /*requireGrid=*/true);
    mm::Config cfg;
    cfg.blockInts = 4096;

    Machine mh(spec, cm);
    const auto ho = mm::runHandOptimized(mh, cfg);

    Machine ma(spec, cm);
    Runtime rta(ma, accessTree(4).config.on(spec));
    const auto at = mm::runDiva(ma, rta, cfg);

    Machine mf(spec, cm);
    Runtime rtf(mf, fixedHome().config.on(spec));
    const auto fh = mm::runDiva(mf, rtf, cfg);

    lastAtOverFh = at.timeUs / fh.timeUs;
    lastSpec = spec;
    table.addRow({spec.describe(), "4-ary access tree",
                  ratioCell(static_cast<double>(at.congestionBytes),
                            static_cast<double>(ho.congestionBytes)),
                  ratioCell(at.timeUs, ho.timeUs),
                  support::fmtPercent(lastAtOverFh)});
    table.addRow({spec.describe(), "fixed home",
                  ratioCell(static_cast<double>(fh.congestionBytes),
                            static_cast<double>(ho.congestionBytes)),
                  ratioCell(fh.timeUs, ho.timeUs), ""});
  }
  table.print();
  printDatapoint("fig04_matmul_scaling", lastSpec, lastAtOverFh);
  return 0;
}
