// Figure 7: bitonic sorting with 4096 keys per processor — congestion and
// execution-time ratios vs network size. Paper: the access tree ratio
// converges toward a constant ≈ 3 (its tree-competitive ratio!) while the
// fixed home ratio grows ≈ log²P (2.8 → 10.5); AT/FH time share falls
// 83% → 40%.
//
// Parameterized over TopologySpec: bitonic assigns wires by decomposition
// leaf order, not grid coordinates, so DIVA_TOPOLOGY may select any shape
// (torus2d, hypercube, ring, star, random-regular) besides the default
// mesh.

#include <cstdio>

#include "bench_common.hpp"

using namespace diva;
using namespace diva::bench;
namespace bs = diva::apps::bitonic;

int main() {
  std::vector<int> sides;
  switch (scale()) {
    case Scale::Quick: sides = {4, 8}; break;
    case Scale::Default: sides = {4, 8, 16}; break;
    case Scale::Full: sides = {4, 8, 16, 32}; break;
  }

  std::printf("Figure 7 — bitonic sorting, 4096 keys per processor\n");
  std::printf("ratios relative to the hand-optimized strategy (paper AT/FH time:\n");
  std::printf("83%% / 60%% / 50%% / 40%%)\n\n");
  support::Table table(
      {"machine", "strategy", "congestion ratio", "exec time ratio", "AT/FH time"});

  double lastAtOverFh = 0.0;
  net::TopologySpec lastSpec;
  for (const int side : sides) {
    const net::TopologySpec spec = topoForSide(side);
    bs::Config cfg;
    cfg.keysPerProc = 4096;

    Machine mh(spec);
    const auto ho = bs::runHandOptimized(mh, cfg);

    Machine ma(spec);
    Runtime rta(ma, accessTree(2, 4).config.on(spec));
    const auto at = bs::runDiva(ma, rta, cfg);

    Machine mf(spec);
    Runtime rtf(mf, fixedHome().config.on(spec));
    const auto fh = bs::runDiva(mf, rtf, cfg);

    lastAtOverFh = at.timeUs / fh.timeUs;
    lastSpec = spec;
    table.addRow({spec.describe(), "2-4-ary access tree",
                  ratioCell(static_cast<double>(at.congestionBytes),
                            static_cast<double>(ho.congestionBytes)),
                  ratioCell(at.timeUs, ho.timeUs),
                  support::fmtPercent(lastAtOverFh)});
    table.addRow({spec.describe(), "fixed home",
                  ratioCell(static_cast<double>(fh.congestionBytes),
                            static_cast<double>(ho.congestionBytes)),
                  ratioCell(fh.timeUs, ho.timeUs), ""});
  }
  table.print();
  printDatapoint("fig07_bitonic_scaling", lastSpec, lastAtOverFh);
  return 0;
}
