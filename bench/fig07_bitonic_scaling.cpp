// Figure 7: bitonic sorting with 4096 keys per processor — congestion and
// execution-time ratios vs network size. Paper: the access tree ratio
// converges toward a constant ≈ 3 (its tree-competitive ratio!) while the
// fixed home ratio grows ≈ log²P (2.8 → 10.5); AT/FH time share falls
// 83% → 40%.

#include <cstdio>

#include "bench_common.hpp"

using namespace diva;
using namespace diva::bench;
namespace bs = diva::apps::bitonic;

int main() {
  std::vector<int> sides;
  switch (scale()) {
    case Scale::Quick: sides = {4, 8}; break;
    case Scale::Default: sides = {4, 8, 16}; break;
    case Scale::Full: sides = {4, 8, 16, 32}; break;
  }

  std::printf("Figure 7 — bitonic sorting, 4096 keys per processor\n");
  std::printf("ratios relative to the hand-optimized strategy (paper AT/FH time:\n");
  std::printf("83%% / 60%% / 50%% / 40%%)\n\n");
  support::Table table(
      {"mesh", "strategy", "congestion ratio", "exec time ratio", "AT/FH time"});

  for (const int side : sides) {
    bs::Config cfg;
    cfg.keysPerProc = 4096;

    Machine mh(side, side);
    const auto ho = bs::runHandOptimized(mh, cfg);

    Machine ma(side, side);
    Runtime rta(ma, accessTree(2, 4).config);
    const auto at = bs::runDiva(ma, rta, cfg);

    Machine mf(side, side);
    Runtime rtf(mf, fixedHome().config);
    const auto fh = bs::runDiva(mf, rtf, cfg);

    const std::string mesh = std::to_string(side) + "x" + std::to_string(side);
    table.addRow({mesh, "2-4-ary access tree",
                  ratioCell(static_cast<double>(at.congestionBytes),
                            static_cast<double>(ho.congestionBytes)),
                  ratioCell(at.timeUs, ho.timeUs),
                  support::fmtPercent(at.timeUs / fh.timeUs)});
    table.addRow({mesh, "fixed home",
                  ratioCell(static_cast<double>(fh.congestionBytes),
                            static_cast<double>(ho.congestionBytes)),
                  ratioCell(fh.timeUs, ho.timeUs), ""});
  }
  table.print();
  return 0;
}
