#pragma once

// Shared helpers for the figure-reproduction benches.
//
// Env knobs:
//   DIVA_FULL=1   — run the paper's full parameter sweeps (slower).
//   DIVA_QUICK=1  — minimal sweeps for smoke-testing.

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/barneshut/barneshut.hpp"
#include "apps/bitonic/bitonic.hpp"
#include "apps/matmul/matmul.hpp"
#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "support/table.hpp"

namespace diva::bench {

inline bool envFlag(const char* name) {
  const char* v = std::getenv(name);
  return v && *v && std::string(v) != "0";
}

enum class Scale { Quick, Default, Full };

inline Scale scale() {
  if (envFlag("DIVA_QUICK")) return Scale::Quick;
  if (envFlag("DIVA_FULL")) return Scale::Full;
  return Scale::Default;
}

struct StratSpec {
  RuntimeConfig config;
  const char* name;
};

inline StratSpec fixedHome() { return {RuntimeConfig::fixedHome(), "fixed home"}; }
inline StratSpec accessTree(int arity, int leafSize = 1) {
  static const char* names[][2] = {{"", ""}};
  (void)names;
  RuntimeConfig rc = RuntimeConfig::accessTree(arity, leafSize);
  const char* label = "access tree";
  if (arity == 2 && leafSize == 1) label = "2-ary access tree";
  if (arity == 4 && leafSize == 1) label = "4-ary access tree";
  if (arity == 16 && leafSize == 1) label = "16-ary access tree";
  if (arity == 2 && leafSize == 4) label = "2-4-ary access tree";
  if (arity == 4 && leafSize == 8) label = "4-8-ary access tree";
  if (arity == 4 && leafSize == 16) label = "4-16-ary access tree";
  return {rc, label};
}

/// "24.52" / "44%"-style cells as in the paper's bar charts.
inline std::string ratioCell(double value, double baseline) {
  return support::fmt(value / baseline, 2);
}

}  // namespace diva::bench
