#pragma once

// Shared helpers for the figure-reproduction benches.
//
// Env knobs:
//   DIVA_FULL=1     — run the paper's full parameter sweeps (slower).
//   DIVA_QUICK=1    — minimal sweeps for smoke-testing.
//   DIVA_TOPOLOGY=  — machine shape for the topology-parameterized benches
//                     (mesh2d default; torus2d, hypercube, ring, star,
//                     random-regular — see topoForSide()).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/barneshut/barneshut.hpp"
#include "apps/bitonic/bitonic.hpp"
#include "apps/matmul/matmul.hpp"
#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "net/graph_topology.hpp"
#include "net/topology_env.hpp"
#include "support/table.hpp"

namespace diva::bench {

inline bool envFlag(const char* name) {
  const char* v = std::getenv(name);
  return v && *v && std::string(v) != "0";
}

enum class Scale { Quick, Default, Full };

inline Scale scale() {
  if (envFlag("DIVA_QUICK")) return Scale::Quick;
  if (envFlag("DIVA_FULL")) return Scale::Full;
  return Scale::Default;
}

struct StratSpec {
  RuntimeConfig config;
  const char* name;
};

inline StratSpec fixedHome() { return {RuntimeConfig::fixedHome(), "fixed home"}; }
inline StratSpec accessTree(int arity, int leafSize = 1) {
  static const char* names[][2] = {{"", ""}};
  (void)names;
  RuntimeConfig rc = RuntimeConfig::accessTree(arity, leafSize);
  const char* label = "access tree";
  if (arity == 2 && leafSize == 1) label = "2-ary access tree";
  if (arity == 4 && leafSize == 1) label = "4-ary access tree";
  if (arity == 16 && leafSize == 1) label = "16-ary access tree";
  if (arity == 2 && leafSize == 4) label = "2-4-ary access tree";
  if (arity == 4 && leafSize == 8) label = "4-8-ary access tree";
  if (arity == 4 && leafSize == 16) label = "4-16-ary access tree";
  return {rc, label};
}

/// "24.52" / "44%"-style cells as in the paper's bar charts.
inline std::string ratioCell(double value, double baseline) {
  return support::fmt(value / baseline, 2);
}

/// The machine shape for a rows×cols sweep point, selected by
/// DIVA_TOPOLOGY. Grid shapes (mesh2d — the default — and torus2d) work
/// for every bench; the non-grid shapes (hypercube, ring, star,
/// random-regular, graph:<file>) — built over P = rows·cols processors —
/// only for benches whose application is not grid-structured (bitonic,
/// Barnes–Hut). Benches that require a grid pass requireGrid = true and
/// fail fast with a clear message otherwise. Name parsing lives in
/// net::topologyFromEnv, shared with the examples and scenario_runner.
inline net::TopologySpec topoForShape(int rows, int cols, bool requireGrid = false) {
  return net::topologyFromEnv(rows, cols, requireGrid);
}

/// Square-machine shorthand for the side×side sweeps.
inline net::TopologySpec topoForSide(int side, bool requireGrid = false) {
  return topoForShape(side, side, requireGrid);
}

/// Machine-readable sweep record consumed by bench/run_bench.sh, which
/// stores the last one per figure in BENCH_engine.json. The named-field
/// form is for benches whose headline ratio is not access-tree vs fixed
/// home (e.g. abl_embedding compares random vs regular embedding).
inline void printDatapoint(const char* fig, const net::TopologySpec& spec,
                           const char* field, double value) {
  std::printf("DATAPOINT %s topology=%s %s=%.4f\n", fig,
              spec.describe().c_str(), field, value);
}

inline void printDatapoint(const char* fig, const net::TopologySpec& spec,
                           double atOverFhTime) {
  printDatapoint(fig, spec, "at_fh_time", atOverFhTime);
}

}  // namespace diva::bench
