// Ablation (paper §3.2, text): access-tree arity sweep for bitonic
// sorting on a 16×16 mesh. Paper finding: unlike matrix multiplication,
// the 2-ary and 2-4-ary access trees perform slightly better (≈5% and
// ≈8%) than the 4-ary tree, because the locality pattern of the bitonic
// sorting circuit matches the 2-ary mesh decomposition.

#include <cstdio>

#include "bench_common.hpp"

using namespace diva;
using namespace diva::bench;
namespace bs = diva::apps::bitonic;

int main() {
  const int side = 16;
  bs::Config cfg;
  cfg.keysPerProc = scale() == Scale::Quick ? 1024 : 4096;

  const net::TopologySpec topo = topoForSide(side);
  Machine mh(topo);
  const auto ho = bs::runHandOptimized(mh, cfg);

  std::printf("Ablation — access tree arity, bitonic sort %dx%d, %d keys/proc\n\n",
              side, side, cfg.keysPerProc);
  support::Table table({"strategy", "congestion ratio", "exec time ratio",
                        "time vs 4-ary"});

  double fourAryTime = 0, fhTime = 0;
  std::vector<std::pair<StratSpec, bs::Result>> rows;
  for (const auto& spec : {accessTree(4), accessTree(2), accessTree(2, 4),
                           accessTree(4, 16), accessTree(16), fixedHome()}) {
    Machine m(topo);
    Runtime rt(m, spec.config.on(topo));
    rows.emplace_back(spec, bs::runDiva(m, rt, cfg));
    // fixedHome() leaves arity/leafSize at their defaults (4/1), so the
    // 4-ary match must also check the strategy kind.
    if (spec.config.kind == StrategyKind::AccessTree &&
        spec.config.arity == 4 && spec.config.leafSize == 1)
      fourAryTime = rows.back().second.timeUs;
    if (spec.config.kind == StrategyKind::FixedHome)
      fhTime = rows.back().second.timeUs;
  }
  table.addRow({"hand-optimized", "1.00", "1.00", ""});
  for (const auto& [spec, r] : rows) {
    table.addRow({spec.name,
                  ratioCell(static_cast<double>(r.congestionBytes),
                            static_cast<double>(ho.congestionBytes)),
                  ratioCell(r.timeUs, ho.timeUs),
                  support::fmtPercent(r.timeUs / fourAryTime)});
  }
  table.print();

  // Headline ratio for BENCH_engine.json: 4-ary access tree vs fixed
  // home execution time on the sort.
  printDatapoint("abl_arity_bitonic", topo, fourAryTime / fhTime);
  return 0;
}
