// Ablation (paper §2 and §3.3): bounded memory modules and LRU copy
// replacement. The paper observes that with 60,000 bodies the 2-ary
// access tree starts replacing copies (its taller trees hold more copies
// per processor), bending its congestion curve upward. Here we cap the
// per-processor module and sweep the capacity on a fixed workload.

#include <cstdio>

#include "bench_common.hpp"

using namespace diva;
using namespace diva::bench;
namespace bh = diva::apps::barneshut;

int main() {
  const int side = 8;
  bh::Config cfg;
  cfg.numBodies = scale() == Scale::Quick ? 2000 : 6000;
  cfg.steps = 3;
  cfg.warmupSteps = 1;

  const net::TopologySpec topo = topoForSide(side);
  std::printf("Ablation — bounded memory modules, Barnes-Hut %d bodies on %dx%d\n\n",
              cfg.numBodies, side, side);
  support::Table table({"capacity/proc", "strategy", "evictions", "refusals",
                        "congestion [10^4 msgs]", "time [min]"});

  const std::vector<std::uint64_t> capacities = {
      ~0ull, 512ull * 1024, 192ull * 1024, 96ull * 1024};

  double fhTime = 0, at4Time = 0;
  for (const auto cap : capacities) {
    for (const auto& spec : {accessTree(2), accessTree(4), fixedHome()}) {
      RuntimeConfig rc = spec.config.on(topo);
      rc.cacheCapacityBytes = cap;
      Machine m(topo);
      Runtime rt(m, rc);
      const auto r = bh::run(m, rt, cfg);
      // Track the tightest capacity (last sweep point) for the datapoint.
      if (spec.config.kind == StrategyKind::FixedHome) fhTime = r.timeUs;
      if (spec.config.kind == StrategyKind::AccessTree && spec.config.arity == 4 &&
          spec.config.leafSize == 1)
        at4Time = r.timeUs;
      const std::string capStr =
          cap == ~0ull ? "unbounded" : support::fmt(cap / 1024.0, 0) + " KB";
      table.addRow({capStr, spec.name, std::to_string(m.stats.ops.evictions),
                    std::to_string(m.stats.ops.evictionFailures),
                    support::fmt(r.congestionMessages / 1e4, 2),
                    support::fmt(r.timeUs / 60e6, 2)});
    }
  }
  table.print();

  // Headline ratio for BENCH_engine.json: 4-ary access tree vs fixed
  // home execution time at the tightest per-processor capacity, where
  // LRU replacement is bending the access-tree curves.
  printDatapoint("abl_bounded_memory", topo, at4Time / fhTime);
  return 0;
}
