// Ablation (paper §3.1, text): access-tree arity sweep for matrix
// multiplication on a 16×16 mesh. Paper finding: "the smaller the degree
// of the access tree, the smaller the congestion. However, the 4-ary
// access tree strategy achieves the best communication and execution
// times because it chooses the best compromise between minimizing the
// congestion and minimizing the number of startups."

#include <cstdio>

#include "bench_common.hpp"

using namespace diva;
using namespace diva::bench;
namespace mm = diva::apps::matmul;

int main() {
  const int side = 16;
  mm::Config cfg;
  cfg.blockInts = scale() == Scale::Quick ? 1024 : 4096;
  const auto cm = net::CostModel::gcel().withoutCompute();

  const net::TopologySpec topo = topoForSide(side, /*requireGrid=*/true);
  Machine mh(topo, cm);
  const auto ho = mm::runHandOptimized(mh, cfg);

  std::printf("Ablation — access tree arity, matmul %dx%d, block %d\n\n", side, side,
              cfg.blockInts);
  support::Table table({"strategy", "congestion ratio", "comm time ratio",
                        "messages [10^3]"});
  table.addRow({"hand-optimized", "1.00", "1.00", support::fmt(0.0, 0)});

  double fourAryTime = 0, fhTime = 0;
  for (const auto& spec : {accessTree(2), accessTree(2, 4), accessTree(4),
                           accessTree(4, 16), accessTree(16), fixedHome()}) {
    Machine m(topo, cm);
    Runtime rt(m, spec.config.on(topo));
    const auto r = mm::runDiva(m, rt, cfg);
    if (spec.config.kind == StrategyKind::AccessTree && spec.config.arity == 4 &&
        spec.config.leafSize == 1)
      fourAryTime = r.timeUs;
    if (spec.config.kind == StrategyKind::FixedHome) fhTime = r.timeUs;
    table.addRow({spec.name,
                  ratioCell(static_cast<double>(r.congestionBytes),
                            static_cast<double>(ho.congestionBytes)),
                  ratioCell(r.timeUs, ho.timeUs),
                  support::fmt(m.net.messagesSent() / 1e3, 0)});
  }
  table.print();

  // Headline ratio for BENCH_engine.json: 4-ary access tree vs fixed
  // home communication time on the multiplication.
  printDatapoint("abl_arity_matmul", topo, fourAryTime / fhTime);
  return 0;
}
