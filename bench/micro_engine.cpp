// Micro benchmarks (google-benchmark) for the simulator substrate itself:
// event throughput, routing, and end-to-end DIVA operation cost in host
// time. These guard against performance regressions that would make the
// figure benches impractically slow.

#include <benchmark/benchmark.h>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "mesh/route.hpp"
#include "net/graph_topology.hpp"
#include "net/hier_routing.hpp"
#include "obs/tracer.hpp"
#include "serve/arrival.hpp"
#include "workload/workload.hpp"

namespace {

using namespace diva;

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 10000; ++i)
      e.scheduleAt(static_cast<double>(i % 97), [] {});
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineEventThroughput);

// Steady-state event churn with protocol-sized captures. A population of
// 512 self-rescheduling events keeps the heap at working depth, and each
// event carries 32 bytes of state — the size of a typical network
// continuation (this-pointer, in-flight message state, a deadline). This
// is the `events_per_sec` series recorded in BENCH_engine.json.
struct ChurnEvent {
  sim::Engine* engine;
  std::uint64_t* budget;
  std::uint64_t rng;
  std::uint64_t pad;
  void operator()() const {
    if (*budget == 0) return;
    --*budget;
    const std::uint64_t next = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    engine->scheduleAfter(static_cast<double>(next % 97),
                          ChurnEvent{engine, budget, next, pad});
  }
};

void BM_EngineEventChurn(benchmark::State& state) {
  static_assert(sizeof(ChurnEvent) == 32);
  std::uint64_t processed = 0;
  for (auto _ : state) {
    sim::Engine e;
    std::uint64_t budget = 100000;
    for (std::uint64_t i = 0; i < 512; ++i) {
      if (budget == 0) break;
      --budget;
      e.scheduleAt(static_cast<double>(i % 17), ChurnEvent{&e, &budget, i, 0});
    }
    e.run();
    processed += e.eventsProcessed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
}
BENCHMARK(BM_EngineEventChurn);

// Steady-state message churn on a 64-node machine: every node runs a
// protocol handler that relays each arriving message to a pseudo-random
// next node, so messages continuously traverse multi-hop routes, contend
// on links and re-enter dispatch. Run per topology so cross-topology
// routing cost is tracked from day one; the mesh leg is the
// `messages_per_sec` series recorded in BENCH_engine.json, the torus leg
// the `torus_messages_per_sec` series.
void messageChurn(benchmark::State& state, const net::TopologySpec& spec) {
  std::uint64_t sent = 0;
  std::uint64_t events = 0;
  sim::EventQueue::Stats qs{};
  for (auto _ : state) {
    Machine m(spec);
    const NodeId procs = static_cast<NodeId>(m.numProcs());
    std::uint64_t budget = 20000;
    for (NodeId p = 0; p < procs; ++p) {
      m.net.setHandler(p, net::kProtocolChannel, [&m, &budget, procs](net::Message&& msg) {
        if (budget == 0) return;
        --budget;
        const NodeId next = static_cast<NodeId>((msg.dst * 13 + 7) % procs);
        m.net.post(net::Message{msg.dst, next, net::kProtocolChannel, 64, {}});
      });
    }
    for (NodeId p = 0; p < procs; ++p) {
      m.net.post(net::Message{p, static_cast<NodeId>((p + procs / 2) % procs),
                              net::kProtocolChannel, 64, {}});
    }
    m.engine.run();
    sent += m.net.messagesSent();
    events += m.engine.eventsProcessed();
    qs = m.engine.queueStats();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
  // Derived pipeline metric and queue-tier occupancy (see BENCH_engine.json).
  state.counters["events_per_message"] =
      static_cast<double>(events) / static_cast<double>(sent);
  const double pushes =
      static_cast<double>(qs.ringPushes + qs.sortedPushes + qs.overflowPushes);
  state.counters["ring_push_share"] = static_cast<double>(qs.ringPushes) / pushes;
  state.counters["overflow_push_share"] =
      static_cast<double>(qs.overflowPushes) / pushes;
  state.counters["bucket_width_us"] = qs.bucketWidthUs;
}

void BM_NetworkMessageChurn(benchmark::State& state) {
  messageChurn(state, net::TopologySpec::mesh2d(8, 8));
}
BENCHMARK(BM_NetworkMessageChurn);

void BM_NetworkMessageChurnTorus(benchmark::State& state) {
  messageChurn(state, net::TopologySpec::torus2d(8, 8));
}
BENCHMARK(BM_NetworkMessageChurnTorus);

// The general-graph leg: same relay churn on a random 3-regular 64-node
// graph, so the table-driven routing path (one load per hop instead of
// closed-form arithmetic) is tracked next to the mesh and torus series.
// This is the `graph_messages_per_sec` series in BENCH_engine.json.
void BM_NetworkMessageChurnGraph(benchmark::State& state) {
  static const net::TopologySpec spec =
      net::TopologySpec::graph(net::randomRegularGraph(64, 3, 1));
  messageChurn(state, spec);
}
BENCHMARK(BM_NetworkMessageChurnGraph);

// Hierarchical-routing leg: identical relay churn on the same 64-node
// random-regular graph, but routed by the landmark-ball scheme
// (docs/routing.md) instead of the dense all-pairs table — per-hop cost
// is an ancestor-chain scan over sorted balls rather than one table
// load, and routes may be up to the documented stretch longer. This is
// the `hier_routing_messages_per_sec` series in BENCH_engine.json.
void BM_HierRoutingMessageChurn(benchmark::State& state) {
  static const net::TopologySpec spec =
      net::TopologySpec::hierGraph(net::randomRegularGraph(64, 3, 1));
  messageChurn(state, spec);
}
BENCHMARK(BM_HierRoutingMessageChurn);

// Route-computation microbenchmark at a size where the dense table is no
// longer an option (4096 nodes would already need 16M entries/node):
// appendRoute on a 1024-node random-regular graph via ball lookups —
// the `hier_routing_routes_per_sec` series.
void BM_HierRoutingAppendRoute(benchmark::State& state) {
  static const net::HierGraphTopology topo(net::randomRegularGraph(1024, 4, 3));
  net::RouteVec route;
  std::uint64_t i = 0;
  for (auto _ : state) {
    route.clear();
    const auto a = static_cast<net::NodeId>(i * 37 % 1024);
    const auto b = static_cast<net::NodeId>(i * 101 % 1024);
    topo.appendRoute(a, b, route);
    benchmark::DoNotOptimize(route.size());
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HierRoutingAppendRoute);

// Zipf-churn workload: end-to-end DIVA traffic (strategy reads, locked
// writes, invalidations, barriers) generated by the synthetic-workload
// subsystem on an 8×8 mesh — a hot-set phase plus a drifted phase. Where
// the relay churn above measures the raw message pipeline, this measures
// the full protocol stack the figure benches and scenario runner
// exercise. Items = messages injected; this is the
// `workload_messages_per_sec` series in BENCH_engine.json.
void BM_WorkloadZipfChurn(benchmark::State& state) {
  workload::WorkloadSpec spec;
  spec.name = "bench-zipf-churn";
  spec.numObjects = 128;
  spec.objectBytes = 256;
  spec.seed = 1;
  spec.phases.push_back(
      workload::PhaseSpec{"hot", 16, 0.9, 1.0, 0, 0.0, true});
  spec.phases.push_back(
      workload::PhaseSpec{"drift", 16, 0.9, 1.0, 64, 0.0, true});
  std::uint64_t sent = 0;
  for (auto _ : state) {
    Machine m(net::TopologySpec::mesh2d(8, 8));
    Runtime rt(m, RuntimeConfig::accessTree(4, 1, spec.seed));
    (void)workload::run(m, rt, spec);
    sent += m.net.messagesSent();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
}
BENCHMARK(BM_WorkloadZipfChurn);

// Traced variant of the zipf churn: the identical workload with an
// ENABLED tracer attached (all categories), so the cost of recording
// transaction/serve spans and network instants on the hot path is
// measured next to the untraced series. The records are cleared (not
// exported) each iteration — this prices recording, not JSON export.
// `workload_traced_messages_per_sec` in BENCH_engine.json; the ratio to
// `workload_messages_per_sec` is the traced-run overhead documented in
// docs/benchmarks.md and docs/observability.md.
void BM_WorkloadTraced(benchmark::State& state) {
  workload::WorkloadSpec spec;
  spec.name = "bench-zipf-traced";
  spec.numObjects = 128;
  spec.objectBytes = 256;
  spec.seed = 1;
  spec.phases.push_back(
      workload::PhaseSpec{"hot", 16, 0.9, 1.0, 0, 0.0, true});
  spec.phases.push_back(
      workload::PhaseSpec{"drift", 16, 0.9, 1.0, 64, 0.0, true});
  std::uint64_t sent = 0;
  for (auto _ : state) {
    Machine m(net::TopologySpec::mesh2d(8, 8));
    Runtime rt(m, RuntimeConfig::accessTree(4, 1, spec.seed));
    obs::Tracer tracer;
    tracer.enable(m.engine, obs::kCatAll);
    workload::RunOptions opts;
    opts.tracer = &tracer;
    (void)workload::run(m, rt, spec, opts);
    sent += m.net.messagesSent();
    benchmark::DoNotOptimize(tracer.numRecords(obs::kCatAll));
    tracer.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
}
BENCHMARK(BM_WorkloadTraced);

// Faulted variant of the workload churn: the same 8×8-mesh zipf traffic
// with a link flap and a processor crash/recover per phase, so the
// detour BFS, crash repair, re-homing and availability retry paths are
// all on the measured path. This is the `workload_churn_messages_per_sec`
// series in BENCH_engine.json; its floor in tools/check_bench_floor.py
// guards the fault machinery against order-of-magnitude regressions.
void BM_WorkloadChurn(benchmark::State& state) {
  workload::WorkloadSpec spec;
  spec.name = "bench-fault-churn";
  spec.numObjects = 128;
  spec.objectBytes = 256;
  spec.seed = 1;
  auto fault = [](net::FaultEvent::Kind k, double offsetUs, net::NodeId a,
                  net::NodeId b = 0) {
    net::FaultEvent ev;
    ev.kind = k;
    ev.offsetUs = offsetUs;
    ev.a = a;
    ev.b = b;
    return ev;
  };
  workload::PhaseSpec hot{"hot", 16, 0.9, 1.0, 0, 0.0, true, {}};
  hot.faults.push_back(fault(net::FaultEvent::Kind::LinkDown, 10.0, 10, 11));
  hot.faults.push_back(fault(net::FaultEvent::Kind::NodeDown, 20.0, 27));
  hot.faults.push_back(fault(net::FaultEvent::Kind::LinkUp, 60.0, 10, 11));
  hot.faults.push_back(fault(net::FaultEvent::Kind::NodeUp, 120.0, 27));
  spec.phases.push_back(hot);
  workload::PhaseSpec drift{"drift", 16, 0.9, 1.0, 64, 0.0, true, {}};
  drift.faults.push_back(fault(net::FaultEvent::Kind::LinkDown, 15.0, 33, 41));
  drift.faults.push_back(fault(net::FaultEvent::Kind::NodeDown, 25.0, 9));
  drift.faults.push_back(fault(net::FaultEvent::Kind::LinkUp, 70.0, 33, 41));
  drift.faults.push_back(fault(net::FaultEvent::Kind::NodeUp, 130.0, 9));
  spec.phases.push_back(drift);
  std::uint64_t sent = 0;
  for (auto _ : state) {
    Machine m(net::TopologySpec::mesh2d(8, 8));
    Runtime rt(m, RuntimeConfig::accessTree(4, 1, spec.seed));
    (void)workload::run(m, rt, spec);
    sent += m.net.messagesSent();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
}
BENCHMARK(BM_WorkloadChurn);

// Elastic variant of the workload churn (docs/faults.md
// "Reconfiguration"): a 64-node random-regular machine grows by two
// nodes, rewires, and shrinks back while the zipf traffic runs, so
// epoch delivery, tree re-decomposition, strategy-state migration and
// handoff forwarding are all on the measured path. This is the
// `workload_reconfig_messages_per_sec` series in BENCH_engine.json;
// its floor in tools/check_bench_floor.py guards the elastic machinery
// against order-of-magnitude regressions.
void BM_WorkloadReconfig(benchmark::State& state) {
  workload::WorkloadSpec spec;
  spec.name = "bench-reconfig";
  spec.numObjects = 128;
  spec.objectBytes = 256;
  spec.seed = 1;
  auto ev = [](net::FaultEvent::Kind k, double offsetUs, net::NodeId a,
               net::NodeId b = 0) {
    net::FaultEvent e;
    e.kind = k;
    e.offsetUs = offsetUs;
    e.a = a;
    e.b = b;
    return e;
  };
  workload::PhaseSpec grow{"grow", 16, 0.9, 1.0, 0, 0.0, true, {}};
  grow.faults.push_back(ev(net::FaultEvent::Kind::AddNode, 10.0, 5));
  grow.faults.push_back(ev(net::FaultEvent::Kind::AddNode, 30.0, 11));
  spec.phases.push_back(grow);
  workload::PhaseSpec rewire{"rewire", 16, 0.9, 1.0, 64, 0.0, true, {}};
  rewire.faults.push_back(ev(net::FaultEvent::Kind::AddLink, 10.0, 64, 65));
  rewire.faults.push_back(ev(net::FaultEvent::Kind::RemoveLink, 40.0, 5, 64));
  spec.phases.push_back(rewire);
  workload::PhaseSpec shrink{"shrink", 16, 0.7, 1.0, 0, 0.0, true, {}};
  shrink.faults.push_back(ev(net::FaultEvent::Kind::RemoveNode, 10.0, 64));
  shrink.faults.push_back(ev(net::FaultEvent::Kind::RemoveNode, 40.0, 65));
  spec.phases.push_back(shrink);
  const auto graph =
      std::make_shared<const net::GraphSpec>(net::randomRegularGraph(64, 3, 1));
  std::uint64_t sent = 0;
  for (auto _ : state) {
    Machine m(net::TopologySpec::graph(graph));
    Runtime rt(m, RuntimeConfig::accessTree(4, 1, spec.seed));
    (void)workload::run(m, rt, spec);
    sent += m.net.messagesSent();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
}
BENCHMARK(BM_WorkloadReconfig);

// Open-loop serving churn: the same 8×8-mesh machine driven by a Poisson
// arrival schedule below the saturation knee (docs/serving.md), so the
// scheduled-arrival driver, latency histogram and per-request accounting
// are all on the measured path. Items = messages, and the run-total p99
// latency (simulated µs — a model property, not host time) is exported
// as a counter: `workload_openloop_messages_per_sec` and
// `workload_openloop_p99_us` in BENCH_engine.json.
void BM_WorkloadOpenLoop(benchmark::State& state) {
  workload::WorkloadSpec spec;
  spec.name = "bench-openloop";
  spec.numObjects = 128;
  spec.objectBytes = 256;
  spec.seed = 1;
  workload::PhaseSpec hot{"hot", 16, 0.9, 1.0, 0, 0.0, true, {}};
  hot.arrival.kind = serve::ArrivalSpec::Kind::Poisson;
  hot.arrival.ratePerSec = 2000.0;
  spec.phases.push_back(hot);
  workload::PhaseSpec drift{"drift", 16, 0.9, 1.0, 64, 0.0, true, {}};
  drift.arrival.kind = serve::ArrivalSpec::Kind::Poisson;
  drift.arrival.ratePerSec = 2000.0;
  spec.phases.push_back(drift);
  std::uint64_t sent = 0;
  double p99Us = 0.0;
  for (auto _ : state) {
    Machine m(net::TopologySpec::mesh2d(8, 8));
    Runtime rt(m, RuntimeConfig::accessTree(4, 1, spec.seed));
    const workload::WorkloadReport r = workload::run(m, rt, spec);
    sent += m.net.messagesSent();
    p99Us = r.serve.p99Us;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
  state.counters["p99_us"] = p99Us;
}
BENCHMARK(BM_WorkloadOpenLoop);

void BM_DimensionOrderRouting(benchmark::State& state) {
  mesh::Mesh m(32, 32);
  std::vector<mesh::Hop> hops;
  std::uint64_t i = 0;
  for (auto _ : state) {
    hops.clear();
    const mesh::NodeId a = static_cast<mesh::NodeId>(i * 37 % 1024);
    const mesh::NodeId b = static_cast<mesh::NodeId>(i * 101 % 1024);
    mesh::routeDimensionOrder(m, a, b, hops);
    benchmark::DoNotOptimize(hops.data());
    ++i;
  }
}
BENCHMARK(BM_DimensionOrderRouting);

void BM_LocalReadHit(benchmark::State& state) {
  Machine m(8, 8);
  Runtime rt(m, RuntimeConfig::accessTree(4, 1));
  const VarId x = rt.createVarFree(0, makeRawValue(256));
  for (auto _ : state) {
    const Value* v = rt.tryReadLocal(0, x);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalReadHit);

void BM_RemoteReadTransaction(benchmark::State& state) {
  // Host-time cost of one full access-tree read transaction including
  // all protocol events (fresh reader each iteration to avoid caching).
  for (auto _ : state) {
    state.PauseTiming();
    Machine m(8, 8);
    Runtime rt(m, RuntimeConfig::accessTree(4, 1));
    const VarId x = rt.createVarFree(63, makeRawValue(256));
    state.ResumeTiming();
    Value out;
    sim::spawn([](Runtime& r, VarId v, Value& o) -> sim::Task<> {
      o = co_await r.read(0, v);
    }(rt, x, out));
    m.engine.run();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RemoteReadTransaction);

void BM_BarrierEpisode(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Machine m(8, 8);
    Runtime rt(m, RuntimeConfig::accessTree(4, 1));
    state.ResumeTiming();
    for (NodeId p = 0; p < 64; ++p) {
      sim::spawn([](Runtime& r, NodeId n) -> sim::Task<> {
        co_await r.barrier(n);
      }(rt, p));
    }
    m.engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BarrierEpisode);

}  // namespace
