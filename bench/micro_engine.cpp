// Micro benchmarks (google-benchmark) for the simulator substrate itself:
// event throughput, routing, and end-to-end DIVA operation cost in host
// time. These guard against performance regressions that would make the
// figure benches impractically slow.

#include <benchmark/benchmark.h>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "mesh/route.hpp"

namespace {

using namespace diva;

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 10000; ++i)
      e.scheduleAt(static_cast<double>(i % 97), [] {});
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_DimensionOrderRouting(benchmark::State& state) {
  mesh::Mesh m(32, 32);
  std::vector<mesh::Hop> hops;
  std::uint64_t i = 0;
  for (auto _ : state) {
    hops.clear();
    const mesh::NodeId a = static_cast<mesh::NodeId>(i * 37 % 1024);
    const mesh::NodeId b = static_cast<mesh::NodeId>(i * 101 % 1024);
    mesh::routeDimensionOrder(m, a, b, hops);
    benchmark::DoNotOptimize(hops.data());
    ++i;
  }
}
BENCHMARK(BM_DimensionOrderRouting);

void BM_LocalReadHit(benchmark::State& state) {
  Machine m(8, 8);
  Runtime rt(m, RuntimeConfig::accessTree(4, 1));
  const VarId x = rt.createVarFree(0, makeRawValue(256));
  for (auto _ : state) {
    const Value* v = rt.tryReadLocal(0, x);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalReadHit);

void BM_RemoteReadTransaction(benchmark::State& state) {
  // Host-time cost of one full access-tree read transaction including
  // all protocol events (fresh reader each iteration to avoid caching).
  for (auto _ : state) {
    state.PauseTiming();
    Machine m(8, 8);
    Runtime rt(m, RuntimeConfig::accessTree(4, 1));
    const VarId x = rt.createVarFree(63, makeRawValue(256));
    state.ResumeTiming();
    Value out;
    sim::spawn([](Runtime& r, VarId v, Value& o) -> sim::Task<> {
      o = co_await r.read(0, v);
    }(rt, x, out));
    m.engine.run();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RemoteReadTransaction);

void BM_BarrierEpisode(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Machine m(8, 8);
    Runtime rt(m, RuntimeConfig::accessTree(4, 1));
    state.ResumeTiming();
    for (NodeId p = 0; p < 64; ++p) {
      sim::spawn([](Runtime& r, NodeId n) -> sim::Task<> {
        co_await r.barrier(n);
      }(rt, p));
    }
    m.engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BarrierEpisode);

}  // namespace
