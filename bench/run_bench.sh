#!/usr/bin/env bash
# Reproducible micro-engine benchmark runner: builds the Release bench
# binary, runs the steady-state churn benchmarks and emits/updates
# BENCH_engine.json with events/sec, messages/sec and peak RSS, so every
# PR records the simulator-core perf trajectory.
#
# Usage:
#   bench/run_bench.sh                 # full run (7 repetitions)
#   BENCH_SMOKE=1 bench/run_bench.sh   # CI smoke: 1 repetition, tiny time
#   BENCH_LABEL=baseline bench/run_bench.sh   # record under a label
#                                             # (default: "current")
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
BUILD_DIR=${BUILD_DIR:-build}
OUT=${BENCH_OUT:-$REPO_ROOT/BENCH_engine.json}
LABEL=${BENCH_LABEL:-current}
REPS=${BENCH_REPS:-7}
if [[ "${BENCH_SMOKE:-0}" != "0" ]]; then
  REPS=1
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target micro_engine fig03_matmul_blocksize \
  fig04_matmul_scaling fig06_bitonic_keys fig07_bitonic_scaling \
  fig08_barneshut_bodies fig09_barneshut_treebuild fig10_barneshut_force \
  fig11_barneshut_scaling abl_arity_bitonic abl_arity_matmul \
  abl_bounded_memory abl_embedding scenario_runner -j >/dev/null

GIT_SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
CXX_BIN=$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" | head -1)
COMPILER=$("${CXX_BIN:-c++}" --version 2>/dev/null | head -1 || echo unknown)

# Per-figure topology datapoints: "DATAPOINT <fig> topology=<shape>
# <field>=<x>" lines (field is at_fh_time for every bench with a fixed
# home leg), quick sweeps. The scaling figures (4/7) run on the torus
# leg; the parameter figures (3/6), the Barnes–Hut figures (8–11) and
# the ablations on the paper's own mesh, so their ratios are directly
# comparable against the published bars (see docs/benchmarks.md). The
# Barnes–Hut quick sweeps are the slow ones (~1 min each for 8/9/10,
# which share the sweep; ~30 s for 11) — the rest are a couple hundred
# ms to ~10 s.
FIG_DATA=$(
  for fig in fig04_matmul_scaling fig07_bitonic_scaling; do
    DIVA_QUICK=1 DIVA_TOPOLOGY=torus2d "$BUILD_DIR/bench/$fig" | grep '^DATAPOINT'
  done
  for fig in fig03_matmul_blocksize fig06_bitonic_keys \
             fig08_barneshut_bodies fig09_barneshut_treebuild \
             fig10_barneshut_force fig11_barneshut_scaling \
             abl_arity_bitonic abl_arity_matmul abl_bounded_memory \
             abl_embedding; do
    DIVA_QUICK=1 DIVA_TOPOLOGY=mesh2d "$BUILD_DIR/bench/$fig" | grep '^DATAPOINT'
  done
)

# Saturation sweep (docs/serving.md): open-loop Poisson rungs over the
# committed hotspot scenario, both strategies — "SWEEP rung=..." lines
# with achieved rate and p99 latency per offered rate.
SWEEP_DATA=$("$BUILD_DIR/tools/scenario_runner" scenarios/hotspot.scenario \
  --sweep 2e3:6.4e4:6 | grep '^SWEEP')

# Elastic sweep (docs/faults.md "Reconfiguration"): the same offered-rate
# ladder over the committed elastic scenario, whose phases grow, rewire
# and shrink the machine mid-run — each rung reports availability next to
# p99, so the latency-vs-availability trade of serving through
# reconfiguration is recorded per PR.
ELASTIC_SWEEP_DATA=$("$BUILD_DIR/tools/scenario_runner" scenarios/elastic.scenario \
  --sweep 1e4:4e4:3 | grep '^SWEEP')

BIN="$BUILD_DIR/bench/micro_engine" RAW="$BUILD_DIR/bench_raw.json" \
OUT="$OUT" LABEL="$LABEL" REPS="$REPS" GIT_SHA="$GIT_SHA" COMPILER="$COMPILER" \
FIG_DATA="$FIG_DATA" SWEEP_DATA="$SWEEP_DATA" \
ELASTIC_SWEEP_DATA="$ELASTIC_SWEEP_DATA" \
python3 - <<'EOF'
import json, os, resource, subprocess, sys

bin_path = os.environ["BIN"]
raw_path = os.environ["RAW"]
out_path = os.environ["OUT"]
label = os.environ["LABEL"]
reps = os.environ["REPS"]

cmd = [
    bin_path,
    "--benchmark_filter=BM_EngineEventChurn|BM_NetworkMessageChurn"
    "|BM_NetworkMessageChurnTorus|BM_NetworkMessageChurnGraph"
    "|BM_HierRoutingMessageChurn|BM_HierRoutingAppendRoute"
    "|BM_WorkloadZipfChurn|BM_WorkloadTraced|BM_WorkloadChurn"
    "|BM_WorkloadReconfig|BM_WorkloadOpenLoop",
    f"--benchmark_repetitions={reps}",
    "--benchmark_report_aggregates_only=true",
    f"--benchmark_out={raw_path}",
    "--benchmark_out_format=json",
]
subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
peak_rss_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss

with open(raw_path) as f:
    raw = json.load(f)

def bench(name):
    # single-repetition runs emit the plain name, aggregate runs the _mean
    for suffix in ("_mean", ""):
        for b in raw["benchmarks"]:
            if b["name"] == name + suffix:
                return b
    raise SystemExit(f"benchmark {name} missing from output")

def rate(name):
    return bench(name)["items_per_second"]

figures = {}
for line in os.environ.get("FIG_DATA", "").splitlines():
    parts = line.split()
    if not parts or parts[0] != "DATAPOINT":
        continue
    fields = dict(kv.split("=", 1) for kv in parts[2:])
    # topology stays a string; every other field is a numeric ratio
    # (at_fh_time for most benches, random_regular_time for the
    # embedding ablation — see bench_common.hpp printDatapoint).
    figures[parts[1]] = {
        k: (v if k == "topology" else float(v)) for k, v in fields.items()
    }

# Saturation-sweep rungs (offered vs achieved req/s + p99 latency +
# availability per strategy) from scenario_runner --sweep runs.
def parse_sweep(env_name):
    rungs = []
    for line in os.environ.get(env_name, "").splitlines():
        parts = line.split()
        if not parts or parts[0] != "SWEEP":
            continue
        fields = dict(kv.split("=", 1) for kv in parts[1:])
        rungs.append({
            "offered_per_sec": float(fields["offered"]),
            "access_tree": {"achieved_per_sec": float(fields["at_achieved"]),
                            "p99_us": float(fields["at_p99_us"]),
                            "availability": float(fields["at_avail"])},
            "fixed_home": {"achieved_per_sec": float(fields["fh_achieved"]),
                           "p99_us": float(fields["fh_p99_us"]),
                           "availability": float(fields["fh_avail"])},
        })
    return rungs

sweep = parse_sweep("SWEEP_DATA")
elastic_sweep = parse_sweep("ELASTIC_SWEEP_DATA")

mesh = bench("BM_NetworkMessageChurn")
entry = {
    "events_per_sec": round(rate("BM_EngineEventChurn")),
    "messages_per_sec": round(rate("BM_NetworkMessageChurn")),
    "torus_messages_per_sec": round(rate("BM_NetworkMessageChurnTorus")),
    "graph_messages_per_sec": round(rate("BM_NetworkMessageChurnGraph")),
    # Same graph, routed by the hierarchical landmark-ball scheme instead
    # of the dense all-pairs table (docs/routing.md): tracks the per-hop
    # lookup overhead plus the stretch the compact state costs.
    "hier_routing_messages_per_sec": round(rate("BM_HierRoutingMessageChurn")),
    # Route computations/s on a 1024-node random-regular graph — a size
    # where only the hierarchical router exists (dense caps at 4096 and
    # would burn 4 GB at 32k).
    "hier_routing_routes_per_sec": round(rate("BM_HierRoutingAppendRoute")),
    # Full-protocol-stack churn (strategy + locks + barriers) driven by
    # the synthetic-workload subsystem; see bench/micro_engine.cpp.
    "workload_messages_per_sec": round(rate("BM_WorkloadZipfChurn")),
    # The identical workload with an enabled all-categories tracer
    # attached (docs/observability.md): the ratio to the line above is
    # the traced-run recording overhead.
    "workload_traced_messages_per_sec": round(rate("BM_WorkloadTraced")),
    # Same workload with per-phase link flaps and a processor
    # crash/recover: detour BFS, crash repair and availability retries on
    # the measured path (docs/faults.md).
    "workload_churn_messages_per_sec": round(rate("BM_WorkloadChurn")),
    # Elastic churn: structural reconfiguration (add/remove node, rewire)
    # on a graph-backed machine under zipf load — epoch delivery, tree
    # re-decomposition, state migration and handoff forwarding all on the
    # measured path (docs/faults.md "Reconfiguration").
    "workload_reconfig_messages_per_sec": round(rate("BM_WorkloadReconfig")),
    # Open-loop serving churn (scheduled Poisson arrivals below the knee,
    # latency histogram on the hot path — docs/serving.md); the p99 is
    # simulated µs, a model property pinned against drift, not host time.
    "workload_openloop_messages_per_sec": round(rate("BM_WorkloadOpenLoop")),
    "workload_openloop_p99_us": round(bench("BM_WorkloadOpenLoop")["p99_us"], 2),
    # Derived pipeline metric + event-queue tier occupancy, from the mesh
    # churn's benchmark counters (see docs/benchmarks.md).
    "events_per_message": round(mesh["events_per_message"], 2),
    "queue": {
        "bucket_width_us": round(mesh["bucket_width_us"], 3),
        "ring_push_share": round(mesh["ring_push_share"], 4),
        "overflow_push_share": round(mesh["overflow_push_share"], 6),
    },
    "peak_rss_kb": peak_rss_kb,
    "repetitions": int(reps),
    "topology": {
        "messages_per_sec": "mesh2d-8x8",
        "torus_messages_per_sec": "torus2d-8x8",
        "graph_messages_per_sec": "graph-rr64d3s1",
        "hier_routing_messages_per_sec": "graph-rr64d3s1-hier16",
        "hier_routing_routes_per_sec": "graph-rr1024d4s3-hier16",
        "workload_messages_per_sec": "mesh2d-8x8 zipf-churn (access tree)",
        "workload_traced_messages_per_sec":
            "mesh2d-8x8 zipf-churn (access tree), tracer enabled (all cats)",
        "workload_churn_messages_per_sec":
            "mesh2d-8x8 zipf-churn + link flaps + node crash (access tree)",
        "workload_reconfig_messages_per_sec":
            "graph-rr64d3s1 zipf + grow/rewire/shrink reconfig (access tree)",
        "workload_openloop_messages_per_sec":
            "mesh2d-8x8 open-loop poisson 2k req/s (access tree)",
    },
    "figures": figures,
    # Offered-rate ladder over scenarios/hotspot.scenario, both
    # strategies (scenario_runner --sweep; docs/serving.md).
    "saturation_sweep": sweep,
    # Same ladder over scenarios/elastic.scenario — p99 vs availability
    # while the machine grows, rewires and shrinks under load
    # (docs/faults.md "Reconfiguration").
    "elastic_sweep": elastic_sweep,
    "git_sha": os.environ.get("GIT_SHA", "unknown"),
    "compiler": os.environ.get("COMPILER", "unknown"),
}

doc = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        doc = json.load(f)
doc.setdefault("benchmark", "micro_engine steady-state churn "
               "(BM_EngineEventChurn / BM_NetworkMessageChurn)")
doc[label] = entry
base = doc.get("baseline")
cur = doc.get("current")
if base and cur:
    doc["speedup"] = {
        "events": round(cur["events_per_sec"] / base["events_per_sec"], 2),
        "messages": round(cur["messages_per_sec"] / base["messages_per_sec"], 2),
    }
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"{label}: {entry['events_per_sec']:,} events/s, "
      f"{entry['messages_per_sec']:,} messages/s, peak RSS {peak_rss_kb} KB")
EOF
