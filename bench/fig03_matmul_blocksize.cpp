// Figure 3: matrix multiplication on a 16×16 mesh — congestion ratio and
// communication-time ratio vs block size, for the fixed home and 4-ary
// access tree strategies relative to the hand-optimized message passing
// strategy. (Paper values for reference: congestion ratios ≈ 33→25 for
// fixed home and ≈ 9→6.5 for the access tree as blocks grow from 64 to
// 4096 entries; time ratios smaller than congestion ratios; access tree
// about twice as fast as fixed home.)
//
// Parameterized over TopologySpec: matmul's block layout needs grid
// coordinates, so DIVA_TOPOLOGY may select mesh2d (default) or torus2d.

#include <cstdio>

#include "bench_common.hpp"

using namespace diva;
using namespace diva::bench;
namespace mm = diva::apps::matmul;

int main() {
  const int side = 16;
  std::vector<int> blocks;
  switch (scale()) {
    case Scale::Quick: blocks = {64, 1024}; break;
    default: blocks = {64, 256, 1024, 4096}; break;
  }
  // The paper measures *communication* time for this experiment (local
  // block products removed from the program).
  const auto cm = net::CostModel::gcel().withoutCompute();
  const net::TopologySpec topo = topoForSide(side, /*requireGrid=*/true);

  std::printf("Figure 3 — matrix multiplication on %s\n", topo.describe().c_str());
  std::printf("ratios relative to the hand-optimized message passing strategy\n\n");
  support::Table table({"block size", "strategy", "congestion ratio", "comm time ratio",
                        "congestion [KB]", "comm time [ms]"});

  double lastAtOverFh = 0.0;
  for (const int block : blocks) {
    mm::Config cfg;
    cfg.blockInts = block;

    Machine mh(topo, cm);
    const auto ho = mm::runHandOptimized(mh, cfg);
    table.addRow({std::to_string(block), "hand-optimized", "1.00", "1.00",
                  support::fmt(ho.congestionBytes / 1e3, 0),
                  support::fmt(ho.timeUs / 1e3, 0)});

    double atTimeUs = 0.0;
    for (const auto& spec : {accessTree(4), fixedHome()}) {
      Machine m(topo, cm);
      Runtime rt(m, spec.config.on(topo));
      const auto r = mm::runDiva(m, rt, cfg);
      table.addRow({std::to_string(block), spec.name,
                    ratioCell(static_cast<double>(r.congestionBytes),
                              static_cast<double>(ho.congestionBytes)),
                    ratioCell(r.timeUs, ho.timeUs),
                    support::fmt(r.congestionBytes / 1e3, 0),
                    support::fmt(r.timeUs / 1e3, 0)});
      if (spec.config.kind == StrategyKind::AccessTree)
        atTimeUs = r.timeUs;
      else
        lastAtOverFh = atTimeUs / r.timeUs;
    }
  }
  table.print();
  // Largest-block communication-time ratio, recorded in BENCH_engine.json
  // next to the fig04 scaling point (paper: access tree ≈ 2× faster).
  printDatapoint("fig03_matmul_blocksize", topo, lastAtOverFh);
  return 0;
}
