#pragma once

// Shared Barnes–Hut sweep used by the Figure 8/9/10 benches: the paper's
// five strategies over a range of body counts on a 16×16 mesh, 7 time
// steps with the first 2 excluded (scaled down by default; DIVA_FULL runs
// the paper's exact configuration).

#include <vector>

#include "bench_common.hpp"

namespace diva::bench {

struct BhPoint {
  int bodies;
  StratSpec strat;
  apps::barneshut::Result result;
};

inline std::vector<StratSpec> bhStrategies() {
  return {fixedHome(), accessTree(16), accessTree(4, 16), accessTree(4),
          accessTree(2)};
}

inline std::vector<int> bhBodyCounts() {
  switch (scale()) {
    case Scale::Quick: return {4000, 8000};
    case Scale::Default: return {8000, 16000, 32000};
    case Scale::Full: return {10000, 20000, 30000, 40000, 50000, 60000};
  }
  return {};
}

inline apps::barneshut::Config bhConfig(int bodies) {
  apps::barneshut::Config cfg;
  cfg.numBodies = bodies;
  if (scale() == Scale::Full) {
    cfg.steps = 7;
    cfg.warmupSteps = 2;
  } else {
    cfg.steps = 3;  // 1 warm-up + 2 measured keeps the default run short
    cfg.warmupSteps = 1;
  }
  return cfg;
}

/// Barnes–Hut is not grid-structured (bodies map to processors via the
/// decomposition leaf order), so the sweep machine is parameterized over
/// TopologySpec via the DIVA_TOPOLOGY env knob.
inline std::vector<BhPoint> runBhSweep(int rows = 16, int cols = 16) {
  const net::TopologySpec topo = topoForShape(rows, cols);
  std::vector<BhPoint> out;
  for (const int n : bhBodyCounts()) {
    for (const auto& spec : bhStrategies()) {
      Machine m(topo);
      Runtime rt(m, spec.config.on(topo));
      out.push_back(BhPoint{n, spec, apps::barneshut::run(m, rt, bhConfig(n))});
    }
  }
  return out;
}

}  // namespace diva::bench
