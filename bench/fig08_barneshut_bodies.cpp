// Figure 8: Barnes–Hut N-body simulation on a 16×16 mesh — absolute
// congestion (in 10000 messages) and execution time (minutes) vs number
// of bodies, for the fixed home strategy and the 16-, 4-16-, 4- and
// 2-ary access trees. Paper shape: congestion ordering fixed home ≫
// 16-ary > 4-16-ary > 4-ary > 2-ary; the 4-ary tree gives the best
// execution time (the 2-ary tree pays too many startups).

#include <cstdio>

#include "bh_sweep.hpp"

using namespace diva;
using namespace diva::bench;

int main() {
  std::printf("Figure 8 — Barnes-Hut on a 16x16 mesh (measured steps only)\n\n");
  const auto points = runBhSweep();

  support::Table table({"bodies", "strategy", "congestion [10^4 msgs]", "time [min]",
                        "total msgs [10^6]"});
  for (const auto& p : points) {
    table.addRow({std::to_string(p.bodies), p.strat.name,
                  support::fmt(p.result.congestionMessages / 1e4, 2),
                  support::fmt(p.result.timeUs / 60e6, 2),
                  support::fmt(p.result.totalMessages / 1e6, 2)});
  }
  table.print();

  // Headline ratio for BENCH_engine.json: 4-ary access tree vs fixed
  // home total execution time at the largest body count of the sweep.
  double fhTime = 0, at4Time = 0;
  const int maxBodies = points.back().bodies;
  for (const auto& p : points) {
    if (p.bodies != maxBodies) continue;
    if (p.strat.config.kind == StrategyKind::FixedHome) fhTime = p.result.timeUs;
    if (p.strat.config.kind == StrategyKind::AccessTree &&
        p.strat.config.arity == 4 && p.strat.config.leafSize == 1)
      at4Time = p.result.timeUs;
  }
  printDatapoint("fig08_barneshut_bodies", topoForShape(16, 16), at4Time / fhTime);
  return 0;
}
